// Package sqlval defines the typed values that flow through the SQL engine,
// the virtual database and the wire protocol. A Value is a small tagged
// union; the zero Value is SQL NULL.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// Value kinds. KindNull is the zero value so that an uninitialised Value is
// SQL NULL, mirroring the zero-value-is-useful convention.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindBytes:
		return "BLOB"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. Exactly one of the payload fields is
// meaningful, selected by K.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	T time.Time
	B []byte
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String_ returns a string value. The underscore avoids colliding with the
// fmt.Stringer method.
func String_(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// Time returns a timestamp value.
func Time(t time.Time) Value { return Value{K: KindTime, T: t} }

// Bytes returns a BLOB value.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsBool interprets v as a truth value. NULL is false.
func (v Value) AsBool() bool {
	switch v.K {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsInt coerces v to an integer, returning an error when the conversion is
// not meaningful.
func (v Value) AsInt() (int64, error) {
	switch v.K {
	case KindInt, KindBool:
		return v.I, nil
	case KindFloat:
		return int64(v.F), nil
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err != nil {
			return 0, errf("cannot convert %q to integer", v.S)
		}
		return i, nil
	case KindNull:
		return 0, nil
	}
	return 0, errf("cannot convert %s to integer", v.K)
}

// AsFloat coerces v to a float, returning an error when the conversion is
// not meaningful.
func (v Value) AsFloat() (float64, error) {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return 0, errf("cannot convert %q to float", v.S)
		}
		return f, nil
	case KindNull:
		return 0, nil
	}
	return 0, errf("cannot convert %s to float", v.K)
}

// AsString renders v as a string using SQL text conventions.
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.T.UTC().Format("2006-01-02 15:04:05")
	case KindBytes:
		return string(v.B)
	}
	return ""
}

// String implements fmt.Stringer. Strings are quoted so that debug output is
// unambiguous.
func (v Value) String() string {
	if v.K == KindString {
		return strconv.Quote(v.S)
	}
	return v.AsString()
}

// SQLLiteral renders v as a literal that the parser accepts, used when
// rewriting macros and when replaying recovery logs.
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindTime:
		return "'" + v.T.UTC().Format("2006-01-02 15:04:05") + "'"
	case KindBytes:
		return "'" + strings.ReplaceAll(string(v.B), "'", "''") + "'"
	default:
		return v.AsString()
	}
}

// numericKind reports whether the kind participates in arithmetic.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool
}

// Compare orders a and b, returning -1, 0 or +1. NULL sorts before
// everything and equals only NULL (three-valued logic is handled by the
// expression evaluator, not here). Values of different numeric kinds compare
// numerically; otherwise values compare as strings.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.K) && numericKind(b.K) {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.K == KindTime && b.K == KindTime {
		switch {
		case a.T.Before(b.T):
			return -1
		case a.T.After(b.T):
			return 1
		}
		return 0
	}
	// Mixed or textual comparison.
	return strings.Compare(a.AsString(), b.AsString())
}

// Equal reports whether a and b compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a map key that is equal for values that Compare equal within
// the same kind class, used for hash indexes and GROUP BY.
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00N"
	case KindInt, KindBool:
		return "\x00i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			// Integral floats hash like the equal integer.
			return "\x00i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x00f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindTime:
		return "\x00t" + strconv.FormatInt(v.T.UnixNano(), 10)
	case KindBytes:
		return "\x00b" + string(v.B)
	default:
		return "\x00s" + v.S
	}
}

// AppendKey appends the Key() encoding of v to b and returns the extended
// buffer. Index maintenance uses it with a reusable scratch buffer so that
// probing an index key costs no string allocation (map lookups on a
// string(b) conversion do not allocate).
func (v Value) AppendKey(b []byte) []byte {
	switch v.K {
	case KindNull:
		return append(b, 0, 'N')
	case KindInt, KindBool:
		return strconv.AppendInt(append(b, 0, 'i'), v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.AppendInt(append(b, 0, 'i'), int64(v.F), 10)
		}
		return strconv.AppendFloat(append(b, 0, 'f'), v.F, 'g', -1, 64)
	case KindTime:
		return strconv.AppendInt(append(b, 0, 't'), v.T.UnixNano(), 10)
	case KindBytes:
		return append(append(b, 0, 'b'), v.B...)
	default:
		return append(append(b, 0, 's'), v.S...)
	}
}

// Add returns a+b with SQL numeric promotion.
func Add(a, b Value) (Value, error) { return arith(a, b, '+') }

// Sub returns a-b with SQL numeric promotion.
func Sub(a, b Value) (Value, error) { return arith(a, b, '-') }

// Mul returns a*b with SQL numeric promotion.
func Mul(a, b Value) (Value, error) { return arith(a, b, '*') }

// Div returns a/b with SQL numeric promotion; division always yields a
// float, and x/0 is an error.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	bf, err := b.AsFloat()
	if err != nil {
		return Null, err
	}
	if bf == 0 {
		return Null, errf("division by zero")
	}
	af, err := a.AsFloat()
	if err != nil {
		return Null, err
	}
	return Float(af / bf), nil
}

// Mod returns a%b on integers.
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	ai, err := a.AsInt()
	if err != nil {
		return Null, err
	}
	bi, err := b.AsInt()
	if err != nil {
		return Null, err
	}
	if bi == 0 {
		return Null, errf("modulo by zero")
	}
	return Int(ai % bi), nil
}

func arith(a, b Value, op byte) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.K == KindInt && b.K == KindInt {
		switch op {
		case '+':
			return Int(a.I + b.I), nil
		case '-':
			return Int(a.I - b.I), nil
		case '*':
			return Int(a.I * b.I), nil
		}
	}
	af, err := a.AsFloat()
	if err != nil {
		return Null, err
	}
	bf, err := b.AsFloat()
	if err != nil {
		return Null, err
	}
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	}
	return Null, errf("unknown operator %q", op)
}

// Clone returns a deep copy of v (BLOB payloads are copied).
func (v Value) Clone() Value {
	if v.K == KindBytes && v.B != nil {
		b := make([]byte, len(v.B))
		copy(b, v.B)
		v.B = b
	}
	return v
}

// CloneRow deep-copies a row of values.
func CloneRow(r []Value) []Value {
	out := make([]Value, len(r))
	for i, v := range r {
		out[i] = v.Clone()
	}
	return out
}
