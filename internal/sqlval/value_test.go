package sqlval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.K != KindNull {
		t.Fatalf("zero kind = %v", v.K)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindTime: "TIMESTAMP",
		KindBytes: "BLOB",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got, _ := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got, _ := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := String_("x").AsString(); got != "x" {
		t.Errorf("String_(x) = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	now := time.Now()
	if got := Time(now).T; !got.Equal(now) {
		t.Error("Time round trip failed")
	}
	if got := Bytes([]byte("ab")).AsString(); got != "ab" {
		t.Errorf("Bytes = %q", got)
	}
}

func TestCoercions(t *testing.T) {
	if i, err := String_(" 17 ").AsInt(); err != nil || i != 17 {
		t.Errorf("AsInt(' 17 ') = %d, %v", i, err)
	}
	if _, err := String_("abc").AsInt(); err == nil {
		t.Error("AsInt('abc') should fail")
	}
	if f, err := Int(3).AsFloat(); err != nil || f != 3.0 {
		t.Errorf("AsFloat(3) = %g, %v", f, err)
	}
	if f, err := String_("2.5").AsFloat(); err != nil || f != 2.5 {
		t.Errorf("AsFloat('2.5') = %g, %v", f, err)
	}
	if i, err := Null.AsInt(); err != nil || i != 0 {
		t.Errorf("AsInt(NULL) = %d, %v", i, err)
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2.0), Int(2), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
		{Bool(true), Int(1), 0},
		{Bool(false), Bool(true), -1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
		{Time(time.Unix(2, 0)), Time(time.Unix(2, 0)), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Value { return randomValue(rng) }
	for i := 0; i < 500; i++ {
		a, b := gen(), gen()
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}
	}
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return Int(rng.Int63n(100) - 50)
	case 2:
		return Float(rng.Float64()*100 - 50)
	case 3:
		return String_(string(rune('a' + rng.Intn(26))))
	case 4:
		return Bool(rng.Intn(2) == 0)
	default:
		return Time(time.Unix(rng.Int63n(1e6), 0))
	}
}

func TestKeyEqualValuesShareKey(t *testing.T) {
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("Int(2) and Float(2.0) must share hash key")
	}
	if Int(2).Key() == Int(3).Key() {
		t.Error("distinct ints must not share key")
	}
	if String_("2").Key() == Int(2).Key() {
		t.Error("string '2' must not collide with int 2")
	}
}

// Property: for any pair of int64, Compare agrees with native ordering.
func TestQuickCompareInts(t *testing.T) {
	f := func(a, b int64) bool {
		got := Compare(Int(a), Int(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SQLLiteral of a string always survives a quote round trip shape
// (balanced quotes, original retrievable by stripping).
func TestQuickStringLiteralEscaping(t *testing.T) {
	f := func(s string) bool {
		lit := String_(s).SQLLiteral()
		if len(lit) < 2 || lit[0] != '\'' || lit[len(lit)-1] != '\'' {
			return false
		}
		// Un-escape and compare.
		body := lit[1 : len(lit)-1]
		var out []byte
		for i := 0; i < len(body); i++ {
			if body[i] == '\'' {
				if i+1 >= len(body) || body[i+1] != '\'' {
					return false // unbalanced quote
				}
				i++
			}
			out = append(out, body[i])
		}
		return string(out) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(got, want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	v, err = Sub(Int(2), Int(3))
	check(v, err, Int(-1))
	v, err = Mul(Int(4), Float(0.5))
	check(v, err, Float(2))
	v, err = Div(Int(7), Int(2))
	check(v, err, Float(3.5))
	v, err = Mod(Int(7), Int(2))
	check(v, err, Int(1))

	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero must fail")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("modulo by zero must fail")
	}
	// NULL propagates.
	v, err = Add(Null, Int(1))
	check(v, err, Null)
	v, err = Div(Null, Int(0))
	check(v, err, Null)
}

func TestCloneIsolatesBytes(t *testing.T) {
	orig := Bytes([]byte{1, 2, 3})
	cl := orig.Clone()
	cl.B[0] = 9
	if orig.B[0] != 1 {
		t.Error("Clone must deep-copy byte payloads")
	}
}

func TestCloneRow(t *testing.T) {
	row := []Value{Int(1), Bytes([]byte{5})}
	cp := CloneRow(row)
	if !reflect.DeepEqual(row, cp) {
		t.Fatal("CloneRow must preserve values")
	}
	cp[1].B[0] = 6
	if row[1].B[0] != 5 {
		t.Error("CloneRow must deep-copy")
	}
}

func TestSQLLiteralForms(t *testing.T) {
	if got := Int(-3).SQLLiteral(); got != "-3" {
		t.Errorf("int literal = %q", got)
	}
	if got := String_("a'b").SQLLiteral(); got != "'a''b'" {
		t.Errorf("string literal = %q", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
	if got := Bool(true).SQLLiteral(); got != "TRUE" {
		t.Errorf("bool literal = %q", got)
	}
	tm := time.Date(2004, 6, 27, 10, 0, 0, 0, time.UTC)
	if got := Time(tm).SQLLiteral(); got != "'2004-06-27 10:00:00'" {
		t.Errorf("time literal = %q", got)
	}
}

func TestAsBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false}, {Int(0), false}, {Int(1), true},
		{Float(0), false}, {Float(0.1), true},
		{String_(""), false}, {String_("x"), true},
		{Bool(true), true}, {Bool(false), false},
	}
	for _, c := range cases {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("AsBool(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}
