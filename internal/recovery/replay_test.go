package recovery

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
)

// randomLog builds a recovery log of overlapping and disjoint writers the
// way the conflict-class sequencer would have recorded them: auto-commit
// writes with per-table footprints, multi-statement transactions whose
// demarcations carry the accumulated footprint, occasional DDL sequenced
// globally, and occasional pre-footprint (V=0) entries. It returns the log
// and the schema statements both replay targets must be seeded with.
func randomLog(rng *rand.Rand, nTables, nOps int) (*MemoryLog, []string) {
	l := NewMemoryLog()
	tables := make([]string, nTables)
	schema := make([]string, nTables)
	for i := range tables {
		tables[i] = fmt.Sprintf("t%d", i)
		schema[i] = fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY AUTO_INCREMENT, v INTEGER, w VARCHAR)", i)
	}
	nextTx := uint64(100)
	extraTables := 0

	writeSQL := func(tbl string, n int) string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("UPDATE %s SET v = v + %d WHERE id <= %d", tbl, n%7+1, n%5+1)
		case 1:
			return fmt.Sprintf("DELETE FROM %s WHERE v = %d", tbl, n%3)
		default:
			return fmt.Sprintf("INSERT INTO %s (v, w) VALUES (%d, 'op%d')", tbl, n%10, n)
		}
	}

	for op := 0; op < nOps; op++ {
		switch r := rng.Intn(100); {
		case r < 5:
			// DDL: a new table, sequenced gate-exclusive.
			name := fmt.Sprintf("x%d", extraTables)
			extraTables++
			l.Append(Entry{Class: ClassWrite, Global: true, V: FootprintVersion,
				SQL: fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY AUTO_INCREMENT, v INTEGER)", name)})
		case r < 10:
			// Legacy entry with an unknown footprint (V=0): replays as a
			// barrier.
			tbl := tables[rng.Intn(len(tables))]
			l.Append(Entry{Class: ClassWrite, SQL: writeSQL(tbl, op), Tables: []string{tbl}})
		case r < 40:
			// A transaction touching 1-3 tables, committed or aborted.
			tx := nextTx
			nextTx++
			l.Append(Entry{TxID: tx, Class: ClassBegin})
			foot := map[string]bool{}
			for j := 0; j < rng.Intn(3)+1; j++ {
				tbl := tables[rng.Intn(len(tables))]
				foot[tbl] = true
				l.Append(Entry{TxID: tx, Class: ClassWrite, SQL: writeSQL(tbl, op*10+j),
					Tables: []string{tbl}, V: FootprintVersion})
			}
			var ft []string
			for t := range foot {
				ft = append(ft, t)
			}
			end := ClassCommit
			if rng.Intn(4) == 0 {
				end = ClassRollback
			}
			l.Append(Entry{TxID: tx, Class: end, Tables: ft, V: FootprintVersion})
		default:
			// Auto-commit write on one table.
			tbl := tables[rng.Intn(len(tables))]
			l.Append(Entry{Class: ClassWrite, SQL: writeSQL(tbl, op),
				Tables: []string{tbl}, V: FootprintVersion})
		}
	}
	return l, schema
}

// dumpState snapshots a backend's full content keyed by table name, so two
// replay targets can be compared byte-for-byte without depending on table
// enumeration order.
func dumpState(t *testing.T, b *backend.Backend) map[string]string {
	t.Helper()
	d, err := TakeDump("state", b.Driver().(backend.SchemaProvider))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(d.Tables))
	for _, td := range d.Tables {
		bs, err := json.Marshal(td)
		if err != nil {
			t.Fatal(err)
		}
		out[td.Name] = string(bs)
	}
	return out
}

// TestPropertyParallelReplayMatchesSequential replays randomized logs of
// overlapping/disjoint writers both sequentially and on parallel appliers
// and requires the restored engines to be byte-identical (runs under -race
// in CI). This is the correctness proof of the parallel replay pipeline:
// per-table dependency chains plus barriers reconstruct exactly the partial
// order the conflict-class sequencer recorded.
func TestPropertyParallelReplayMatchesSequential(t *testing.T) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	iters := 8
	if testing.Short() {
		iters = 2
	}
	for iter := 0; iter < iters; iter++ {
		nTables := rng.Intn(5) + 2
		nOps := rng.Intn(150) + 50
		l, schema := randomLog(rng, nTables, nOps)

		seqB := mkBackend(t, fmt.Sprintf("seq%d", iter), schema...)
		parB := mkBackend(t, fmt.Sprintf("par%d", iter), schema...)

		seqApplied, err := ReplayParallel(l, 0, seqB, 1)
		if err != nil {
			t.Fatalf("iter %d: sequential replay: %v", iter, err)
		}
		parApplied, err := ReplayParallel(l, 0, parB, 8)
		if err != nil {
			t.Fatalf("iter %d: parallel replay: %v", iter, err)
		}
		if seqApplied != parApplied {
			t.Fatalf("iter %d: applied %d sequentially but %d in parallel", iter, seqApplied, parApplied)
		}

		seqState := dumpState(t, seqB)
		parState := dumpState(t, parB)
		if len(seqState) != len(parState) {
			t.Fatalf("iter %d: table sets differ: %d vs %d", iter, len(seqState), len(parState))
		}
		for name, want := range seqState {
			if got := parState[name]; got != want {
				t.Fatalf("iter %d: table %s diverged after parallel replay\nsequential: %s\nparallel:   %s",
					iter, name, want, got)
			}
		}
	}
}

// TestParallelReplayAppliesOnlyCommitted: the transaction-outcome filter is
// shared with the sequential path; prove it holds on the parallel one too.
func TestParallelReplayAppliesOnlyCommitted(t *testing.T) {
	l := NewMemoryLog()
	l.Append(Entry{TxID: 1, Class: ClassBegin})
	l.Append(Entry{TxID: 1, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (1)", Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{TxID: 2, Class: ClassBegin})
	l.Append(Entry{TxID: 2, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (2)", Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{TxID: 1, Class: ClassCommit, Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{TxID: 2, Class: ClassRollback, Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (3)", Tables: []string{"t"}, V: FootprintVersion})

	b := mkBackend(t, "ponly", "CREATE TABLE t (a INTEGER)")
	applied, err := ReplayParallel(l, 0, b, 4)
	if err != nil || applied != 2 {
		t.Fatalf("applied = %d, %v", applied, err)
	}
	res, _ := b.Read(0, nil, "SELECT a FROM t ORDER BY a")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Fatalf("replayed rows: %v", res.Rows)
	}
}

// TestParallelReplayCrashConsistency: an entry that fails mid-replay must
// surface its error (lowest failing Seq, with the SQL), the worker pool
// must drain cleanly (ReplayParallel returns with no appliers left
// running), and entries conflicting with the failed one must not have been
// applied after it.
func TestParallelReplayCrashConsistency(t *testing.T) {
	l := NewMemoryLog()
	// A healthy disjoint class (t0) around a poisoned class (t1): entry 3
	// fails, entry 4 conflicts with it and must not apply.
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t0 (a) VALUES (1)", Tables: []string{"t0"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t1 (a) VALUES (1)", Tables: []string{"t1"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO missing (a) VALUES (1)", Tables: []string{"t1"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t1 (a) VALUES (2)", Tables: []string{"t1"}, V: FootprintVersion})

	b := mkBackend(t, "crash", "CREATE TABLE t0 (a INTEGER)", "CREATE TABLE t1 (a INTEGER)")
	applied, err := ReplayParallel(l, 0, b, 4)
	if err == nil {
		t.Fatal("mid-replay failure did not surface")
	}
	if !strings.Contains(err.Error(), "seq 3") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("error does not name the failing entry: %v", err)
	}
	if applied > 3 {
		t.Fatalf("applied = %d after failure", applied)
	}
	// The failed entry's conflict class stopped at the failure: t1 must not
	// contain the value inserted by the entry behind the poisoned one.
	res, rerr := b.Read(0, nil, "SELECT a FROM t1 WHERE a = 2")
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(res.Rows) != 0 {
		t.Fatal("entry conflicting with the failed one was applied past the failure")
	}
}

// TestParallelReplayLegacyEntriesSerialize: V=0 entries (unknown footprint)
// must act as barriers, so a legacy log parallel-replays in pure Seq order
// and still matches the sequential result.
func TestParallelReplayLegacyEntriesSerialize(t *testing.T) {
	l := NewMemoryLog()
	for i := 0; i < 20; i++ {
		l.Append(Entry{Class: ClassWrite, SQL: fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i)})
	}
	b := mkBackend(t, "legacy", "CREATE TABLE t (a INTEGER, id INTEGER PRIMARY KEY AUTO_INCREMENT)")
	applied, err := ReplayParallel(l, 0, b, 8)
	if err != nil || applied != 20 {
		t.Fatalf("applied = %d, %v", applied, err)
	}
	res, _ := b.Read(0, nil, "SELECT a FROM t ORDER BY id")
	for i, r := range res.Rows {
		if int(r[0].I) != i {
			t.Fatalf("legacy entries applied out of order: row %d = %v", i, r[0])
		}
	}
}

// TestReplayParallelDefaultsWorkers: workers <= 0 means GOMAXPROCS, and the
// replay still succeeds.
func TestReplayParallelDefaultsWorkers(t *testing.T) {
	l := NewMemoryLog()
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (1)", Tables: []string{"t"}, V: FootprintVersion})
	b := mkBackend(t, "defw", "CREATE TABLE t (a INTEGER)")
	if applied, err := ReplayParallel(l, 0, b, 0); err != nil || applied != 1 {
		t.Fatalf("applied = %d, %v", applied, err)
	}
}

// errLog wraps a Log whose Since fails, to cover the error path.
type errLog struct{ Log }

func (e errLog) Since(uint64) ([]Entry, error) { return nil, errSince }

var errSince = errors.New("boom")

func TestReplayParallelSurfacesSinceError(t *testing.T) {
	b := mkBackend(t, "since", "CREATE TABLE t (a INTEGER)")
	if _, err := ReplayParallel(errLog{NewMemoryLog()}, 0, b, 4); !errors.Is(err, errSince) {
		t.Fatalf("Since error lost: %v", err)
	}
}

// seedEngineBackend builds an engine-backed backend with nTables tables of
// nRows rows each, for the replay benchmarks.
func seedEngineBackend(tb testing.TB, name string, nTables, nRows int) *backend.Backend {
	tb.Helper()
	e := sqlengine.New(name)
	s := e.NewSession()
	for i := 0; i < nTables; i++ {
		if _, err := s.ExecSQL(fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, v INTEGER)", i)); err != nil {
			tb.Fatal(err)
		}
		for r := 0; r < nRows; r++ {
			if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO t%d (id, v) VALUES (%d, 0)", i, r)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	s.Close()
	b := backend.New(backend.Config{Name: name, Driver: &backend.EngineDriver{Engine: e}})
	b.Enable()
	tb.Cleanup(b.Close)
	return b
}

// updateLog builds a log of idempotent UPDATEs spread over nTables disjoint
// conflict classes, so one backend can absorb repeated replays.
func updateLog(nTables, nEntries int) *MemoryLog {
	l := NewMemoryLog()
	for i := 0; i < nEntries; i++ {
		tbl := fmt.Sprintf("t%d", i%nTables)
		l.Append(Entry{Class: ClassWrite, Tables: []string{tbl}, V: FootprintVersion,
			SQL: fmt.Sprintf("UPDATE %s SET v = %d WHERE id = %d", tbl, i, i%64)})
	}
	return l
}

// BenchmarkSequentialReplay is the legacy one-entry-at-a-time baseline.
func BenchmarkSequentialReplay(b *testing.B) {
	bk := seedEngineBackend(b, "bseq", 8, 64)
	l := updateLog(8, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayParallel(l, 0, bk, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelReplay replays the same 8-class log with GOMAXPROCS
// appliers; disjoint classes apply concurrently.
func BenchmarkParallelReplay(b *testing.B) {
	bk := seedEngineBackend(b, "bpar", 8, 64)
	l := updateLog(8, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayParallel(l, 0, bk, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReplayPassSpanningTransaction is the pass-bookkeeping proof: a
// transaction whose writes fall inside the bulk pass's window but whose
// commit is only logged afterwards must be applied whole by the later pass
// — and nothing the earlier pass applied may be applied twice. The
// auto-commit insert on the same table sits after the unresolved write in
// its conflict class, so the bulk pass holds it back (Deferred) and the
// catch-up pass applies both in Seq order.
func TestReplayPassSpanningTransaction(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "span", "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")

	l.Append(Entry{Class: ClassWrite, TxID: 9, SQL: "INSERT INTO t (id, v) VALUES (1, 1)",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (id, v) VALUES (2, 2)",
		Tables: []string{"t"}, V: FootprintVersion})

	pass, unresolved, applied, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("bulk pass applied %d, want 0 (auto-commit conflicts with unresolved tx 9)", applied)
	}
	if pass.Deferred != 1 {
		t.Fatalf("bulk pass Deferred = %d, want 1", pass.Deferred)
	}
	if len(unresolved) != 1 || unresolved[0] != 9 {
		t.Fatalf("unresolved = %v, want [9]", unresolved)
	}

	l.Append(Entry{Class: ClassCommit, TxID: 9, Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (id, v) VALUES (3, 3)",
		Tables: []string{"t"}, V: FootprintVersion})

	pass, unresolved, applied, err = ReplayPass(l, 0, pass, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tx 9's write, the held-back id=2 insert, and the new auto-commit.
	if applied != 3 {
		t.Fatalf("catch-up pass applied %d, want 3", applied)
	}
	if len(unresolved) != 0 {
		t.Fatalf("unresolved after commit = %v, want none", unresolved)
	}
	if pass.Deferred != 0 {
		t.Fatalf("catch-up pass Deferred = %d, want 0", pass.Deferred)
	}

	// A third pass over an unchanged log is a no-op.
	if _, _, applied, err = ReplayPass(l, 0, pass, b, 1); err != nil || applied != 0 {
		t.Fatalf("idle pass applied %d err %v, want 0 nil", applied, err)
	}

	res, err := b.DirectExec(nil, "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != 3 {
		t.Fatalf("rows = %d, want 3", got)
	}
}

// TestReplayPassRolledBackStaysOut: a transaction that rolls back never
// applies, in any pass, and stops being reported unresolved once its
// rollback is logged.
func TestReplayPassRolledBackStaysOut(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "rb", "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")

	l.Append(Entry{Class: ClassWrite, TxID: 4, SQL: "INSERT INTO t (id, v) VALUES (1, 1)",
		Tables: []string{"t"}, V: FootprintVersion})
	pass, unresolved, _, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil || len(unresolved) != 1 {
		t.Fatalf("unresolved = %v err %v, want [4] nil", unresolved, err)
	}
	l.Append(Entry{Class: ClassRollback, TxID: 4, Tables: []string{"t"}, V: FootprintVersion})
	_, unresolved, applied, err := ReplayPass(l, 0, pass, b, 1)
	if err != nil || applied != 0 || len(unresolved) != 0 {
		t.Fatalf("after rollback: applied=%d unresolved=%v err=%v, want 0 [] nil", applied, unresolved, err)
	}
	res, err := b.DirectExec(nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("rolled-back write leaked: %v %v", res, err)
	}
}
