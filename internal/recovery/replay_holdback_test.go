package recovery

// Regression tests for cross-pass conflict-class ordering. Live execution
// applies writes of one conflict class in Seq order — a transaction's write
// holds the class ticket until commit, so a later conflicting auto-commit
// only runs after it. Multi-pass replay must reproduce that order even when
// a transaction's commit is not yet logged when a pass runs: later
// conflicting entries are held back (Pass.Deferred), not applied around it.

import "testing"

// TestReplayPassHoldsBackConflictingAuto: a bulk pass must not apply an
// auto-commit entry that follows an unresolved transaction's write on the
// same conflict class. Before holdback, the UPDATE applied in pass 1
// (matching zero rows) and the INSERT in pass 2 — the inverse of the live
// order — leaving v = 1 instead of 9.
func TestReplayPassHoldsBackConflictingAuto(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "hold", "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")

	l.Append(Entry{Class: ClassWrite, TxID: 9, SQL: "INSERT INTO t (id, v) VALUES (1, 1)",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "UPDATE t SET v = 9 WHERE id = 1",
		Tables: []string{"t"}, V: FootprintVersion})

	pass, unresolved, applied, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 || pass.Deferred != 1 {
		t.Fatalf("bulk pass applied=%d Deferred=%d, want 0 1", applied, pass.Deferred)
	}
	if len(unresolved) != 1 || unresolved[0] != 9 {
		t.Fatalf("unresolved = %v, want [9]", unresolved)
	}

	l.Append(Entry{Class: ClassCommit, TxID: 9, V: FootprintVersion})
	pass, _, applied, err = ReplayPass(l, 0, pass, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || pass.Deferred != 0 {
		t.Fatalf("catch-up applied=%d Deferred=%d, want 2 0", applied, pass.Deferred)
	}
	res, err := b.DirectExec(nil, "SELECT v FROM t WHERE id = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 9 {
		t.Fatalf("v = %v (err %v), want 9 — insert/update replayed out of order", res, err)
	}
}

// TestReplayPassDefersWholeTransactionGroup: a committed transaction is
// applied all-or-nothing, so one write held back behind an unresolved
// conflicting transaction defers the whole group — including its writes on
// disjoint tables, chained through the per-transaction key — and anything
// conflicting with those in turn. Disjoint classes still apply.
func TestReplayPassDefersWholeTransactionGroup(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "group",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)",
		"CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)",
		"CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)",
		"INSERT INTO t (id, v) VALUES (1, 0)",
		"INSERT INTO a (id, v) VALUES (1, 1)")

	l.Append(Entry{Class: ClassWrite, TxID: 9, SQL: "UPDATE t SET v = 5 WHERE id = 1",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, TxID: 7, SQL: "UPDATE t SET v = v + 10 WHERE id = 1",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, TxID: 7, SQL: "UPDATE a SET v = 2 WHERE id = 1",
		Tables: []string{"a"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassCommit, TxID: 7, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "UPDATE a SET v = v * 3 WHERE id = 1",
		Tables: []string{"a"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO u (id, v) VALUES (1, 1)",
		Tables: []string{"u"}, V: FootprintVersion})

	pass, unresolved, applied, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the write on u is disjoint from the held-back chain: tx 9 holds
	// t, which defers tx 7 whole (t and a), which defers the a update.
	if applied != 1 || pass.Deferred != 2 {
		t.Fatalf("bulk pass applied=%d Deferred=%d, want 1 2", applied, pass.Deferred)
	}
	if len(unresolved) != 1 || unresolved[0] != 9 {
		t.Fatalf("unresolved = %v, want [9]", unresolved)
	}

	l.Append(Entry{Class: ClassCommit, TxID: 9, V: FootprintVersion})
	pass, _, applied, err = ReplayPass(l, 0, pass, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 || pass.Deferred != 0 {
		t.Fatalf("catch-up applied=%d Deferred=%d, want 4 0", applied, pass.Deferred)
	}
	res, err := b.DirectExec(nil, "SELECT v FROM t WHERE id = 1")
	if err != nil || res.Rows[0][0].I != 15 {
		t.Fatalf("t.v = %v (err %v), want 15 (tx9 then tx7, live order)", res, err)
	}
	res, err = b.DirectExec(nil, "SELECT v FROM a WHERE id = 1")
	if err != nil || res.Rows[0][0].I != 6 {
		t.Fatalf("a.v = %v (err %v), want 6 (tx7 then auto)", res, err)
	}

	// Unchanged log: nothing applies twice.
	if _, _, applied, err = ReplayPass(l, 0, pass, b, 1); err != nil || applied != 0 {
		t.Fatalf("idle pass applied %d err %v, want 0 nil", applied, err)
	}
}

// TestReplayPassDeadTransactionLiftsHoldback: a transaction the caller has
// proven abandoned (unresolved in the log, inactive cluster-wide) replays
// as rolled back once marked in Pass.TxDead — it stops being reported
// unresolved and stops holding back its conflict class.
func TestReplayPassDeadTransactionLiftsHoldback(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "dead", "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")

	l.Append(Entry{Class: ClassWrite, TxID: 4, SQL: "INSERT INTO t (id, v) VALUES (1, 1)",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (id, v) VALUES (2, 2)",
		Tables: []string{"t"}, V: FootprintVersion})

	pass, unresolved, applied, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil || applied != 0 || pass.Deferred != 1 || len(unresolved) != 1 {
		t.Fatalf("bulk pass applied=%d Deferred=%d unresolved=%v err=%v, want 0 1 [4] nil",
			applied, pass.Deferred, unresolved, err)
	}

	pass.TxDead = map[uint64]bool{4: true}
	pass, unresolved, applied, err = ReplayPass(l, 0, pass, b, 1)
	if err != nil || applied != 1 || pass.Deferred != 0 || len(unresolved) != 0 {
		t.Fatalf("after TxDead: applied=%d Deferred=%d unresolved=%v err=%v, want 1 0 [] nil",
			applied, pass.Deferred, unresolved, err)
	}
	res, err := b.DirectExec(nil, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v (err %v), want 1 (only the auto-commit)", res, err)
	}
	res, err = b.DirectExec(nil, "SELECT COUNT(*) FROM t WHERE id = 1")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Fatalf("dead transaction's write leaked: %v %v", res, err)
	}
}

// TestReplayPassFrontierSplitsAroundDeferral: a held-back auto-commit entry
// caps Pass.Last below itself so the next pass revisits it, while a later
// disjoint auto-commit that did apply is remembered in Pass.AutoDone —
// neither skipped nor applied twice.
func TestReplayPassFrontierSplitsAroundDeferral(t *testing.T) {
	l := NewMemoryLog()
	b := mkBackend(t, "front",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)",
		"CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)")

	l.Append(Entry{Class: ClassWrite, TxID: 3, SQL: "INSERT INTO t (id, v) VALUES (1, 1)",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "UPDATE t SET v = 2 WHERE id = 1",
		Tables: []string{"t"}, V: FootprintVersion})
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO u (id, v) VALUES (1, 1)",
		Tables: []string{"u"}, V: FootprintVersion})

	pass, _, applied, err := ReplayPass(l, 0, nil, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || pass.Deferred != 1 {
		t.Fatalf("bulk pass applied=%d Deferred=%d, want 1 1 (u insert only)", applied, pass.Deferred)
	}
	if pass.Last != 1 || !pass.AutoDone[3] {
		t.Fatalf("Last=%d AutoDone=%v, want Last=1 AutoDone[3]", pass.Last, pass.AutoDone)
	}

	l.Append(Entry{Class: ClassCommit, TxID: 3, V: FootprintVersion})
	pass, _, applied, err = ReplayPass(l, 0, pass, b, 1)
	if err != nil || applied != 2 || pass.Deferred != 0 {
		t.Fatalf("catch-up applied=%d Deferred=%d err=%v, want 2 0 nil", applied, pass.Deferred, err)
	}
	res, err := b.DirectExec(nil, "SELECT v FROM t WHERE id = 1")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("t.v = %v (err %v), want 2", res, err)
	}
	res, err = b.DirectExec(nil, "SELECT COUNT(*) FROM u")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("u rows = %v (err %v), want exactly 1", res, err)
	}
}
