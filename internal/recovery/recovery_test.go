package recovery

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlengine"
)

func testLogContract(t *testing.T, mk func(t *testing.T) Log) {
	t.Helper()

	t.Run("AppendAssignsMonotonicSeq", func(t *testing.T) {
		l := mk(t)
		defer l.Close()
		s1, err := l.Append(Entry{User: "u", TxID: 1, Class: ClassBegin})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := l.Append(Entry{User: "u", TxID: 1, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (1)"})
		if err != nil {
			t.Fatal(err)
		}
		if s2 <= s1 {
			t.Fatalf("seq not monotonic: %d then %d", s1, s2)
		}
	})

	t.Run("SinceFiltersBySeq", func(t *testing.T) {
		l := mk(t)
		defer l.Close()
		l.Append(Entry{Class: ClassWrite, SQL: "w1"})
		mid, _ := l.Append(Entry{Class: ClassWrite, SQL: "w2"})
		l.Append(Entry{Class: ClassWrite, SQL: "w3"})
		got, err := l.Since(mid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].SQL != "w3" {
			t.Fatalf("Since(%d) = %+v", mid, got)
		}
		all, _ := l.Since(0)
		if len(all) != 3 {
			t.Fatalf("Since(0) = %d entries", len(all))
		}
	})

	t.Run("CheckpointMarkers", func(t *testing.T) {
		l := mk(t)
		defer l.Close()
		l.Append(Entry{Class: ClassWrite, SQL: "before"})
		seq, err := l.Checkpoint("cp1")
		if err != nil {
			t.Fatal(err)
		}
		l.Append(Entry{Class: ClassWrite, SQL: "after"})
		got, ok, err := l.CheckpointSeq("cp1")
		if err != nil || !ok || got != seq {
			t.Fatalf("CheckpointSeq = %d, %v, %v (want %d)", got, ok, err, seq)
		}
		if _, ok, _ := l.CheckpointSeq("missing"); ok {
			t.Fatal("missing checkpoint found")
		}
		after, _ := l.Since(seq)
		if len(after) != 1 || after[0].SQL != "after" {
			t.Fatalf("entries after checkpoint: %+v", after)
		}
	})
}

func TestMemoryLog(t *testing.T) {
	testLogContract(t, func(t *testing.T) Log { return NewMemoryLog() })
}

func TestFileLog(t *testing.T) {
	testLogContract(t, func(t *testing.T) Log {
		l, err := OpenFileLog(filepath.Join(t.TempDir(), "recovery.log"))
		if err != nil {
			t.Fatal(err)
		}
		return l
	})
}

func TestFileLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recovery.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Entry{User: "u", TxID: 3, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES ('x''y')"})
	l.Checkpoint("cp")
	l.Append(Entry{Class: ClassWrite, SQL: "w2"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, ok, _ := l2.CheckpointSeq("cp")
	if !ok {
		t.Fatal("checkpoint lost on reopen")
	}
	after, _ := l2.Since(seq)
	if len(after) != 1 || after[0].SQL != "w2" {
		t.Fatalf("after reopen: %+v", after)
	}
	// Appending continues the sequence.
	s, _ := l2.Append(Entry{Class: ClassWrite, SQL: "w3"})
	if s <= seq {
		t.Fatalf("seq restarted: %d <= %d", s, seq)
	}
}

// engineExecutor adapts a raw engine to the SQLExecutor interface.
type engineExecutor struct{ e *sqlengine.Engine }

func (x engineExecutor) ExecSQL(sql string) (int64, error) {
	s := x.e.NewSession()
	defer s.Close()
	res, err := s.ExecSQL(sql)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

func (x engineExecutor) QuerySQL(sql string) ([]string, [][]string, error) {
	s := x.e.NewSession()
	defer s.Close()
	res, err := s.ExecSQL(sql)
	if err != nil {
		return nil, nil, err
	}
	rows := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = make([]string, len(r))
		for j, v := range r {
			rows[i][j] = v.AsString()
		}
	}
	return res.Columns, rows, nil
}

func TestSQLLog(t *testing.T) {
	testLogContract(t, func(t *testing.T) Log {
		l, err := NewSQLLog(engineExecutor{sqlengine.New("logdb")}, "recovery_log")
		if err != nil {
			t.Fatal(err)
		}
		return l
	})
}

func TestSQLLogEscapesQuotes(t *testing.T) {
	l, err := NewSQLLog(engineExecutor{sqlengine.New("logdb")}, "rl")
	if err != nil {
		t.Fatal(err)
	}
	sql := "INSERT INTO t (s) VALUES ('it''s')"
	if _, err := l.Append(Entry{Class: ClassWrite, SQL: sql}); err != nil {
		t.Fatal(err)
	}
	got, err := l.Since(0)
	if err != nil || len(got) != 1 || got[0].SQL != sql {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
}

func mkBackend(t *testing.T, name string, seedSQL ...string) *backend.Backend {
	t.Helper()
	e := sqlengine.New(name)
	s := e.NewSession()
	for _, q := range seedSQL {
		if _, err := s.ExecSQL(q); err != nil {
			t.Fatalf("seed %q: %v", q, err)
		}
	}
	s.Close()
	b := backend.New(backend.Config{Name: name, Driver: &backend.EngineDriver{Engine: e}})
	b.Enable()
	t.Cleanup(b.Close)
	return b
}

func TestDumpAndRestore(t *testing.T) {
	src := mkBackend(t, "src",
		"CREATE TABLE item (i_id INTEGER PRIMARY KEY AUTO_INCREMENT, title VARCHAR NOT NULL, cost FLOAT, added TIMESTAMP, ok BOOLEAN)",
		"INSERT INTO item (title, cost, added, ok) VALUES ('a''quote', 1.5, '2004-06-27 10:00:00', TRUE), ('b', NULL, NULL, FALSE)",
		"CREATE TABLE empty_table (x INTEGER)",
	)
	d, err := TakeDump("cp1", src.Driver().(backend.SchemaProvider))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tables) != 2 {
		t.Fatalf("tables dumped = %d", len(d.Tables))
	}

	// JSON round trip.
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}

	dst := mkBackend(t, "dst")
	if err := Restore(d2, dst); err != nil {
		t.Fatal(err)
	}
	res, err := dst.Read(0, nil, "SELECT title, cost, ok FROM item ORDER BY i_id")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("restored rows: %v %v", res, err)
	}
	if res.Rows[0][0].AsString() != "a'quote" {
		t.Errorf("escaped string: %v", res.Rows[0][0])
	}
	if !res.Rows[1][1].IsNull() {
		t.Errorf("NULL not restored: %v", res.Rows[1][1])
	}
	if !res.Rows[0][2].AsBool() || res.Rows[1][2].AsBool() {
		t.Errorf("bools not restored: %v", res.Rows)
	}
	// Auto-increment continues after restore.
	out, err := dst.Exec(nil, "INSERT INTO item (title) VALUES ('c')")
	if err != nil || out.LastInsertID != 3 {
		t.Errorf("auto-inc after restore: %+v %v", out, err)
	}
}

func TestRestoreOverwritesExisting(t *testing.T) {
	src := mkBackend(t, "src2",
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t (a) VALUES (1)")
	d, _ := TakeDump("cp", src.Driver().(backend.SchemaProvider))
	dst := mkBackend(t, "dst2",
		"CREATE TABLE t (a INTEGER)",
		"INSERT INTO t (a) VALUES (99), (98)")
	if err := Restore(d, dst); err != nil {
		t.Fatal(err)
	}
	res, _ := dst.Read(0, nil, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("restore did not overwrite: %v", res.Rows[0][0])
	}
}

func TestReplayAppliesOnlyCommitted(t *testing.T) {
	l := NewMemoryLog()
	// tx1 commits, tx2 aborts, tx3 never finishes, plus one autocommit.
	l.Append(Entry{TxID: 1, Class: ClassBegin})
	l.Append(Entry{TxID: 1, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (1)"})
	l.Append(Entry{TxID: 2, Class: ClassBegin})
	l.Append(Entry{TxID: 2, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (2)"})
	l.Append(Entry{TxID: 1, Class: ClassCommit})
	l.Append(Entry{TxID: 2, Class: ClassRollback})
	l.Append(Entry{TxID: 0, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (3)"})
	l.Append(Entry{TxID: 3, Class: ClassBegin})
	l.Append(Entry{TxID: 3, Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (4)"})

	b := mkBackend(t, "rb", "CREATE TABLE t (a INTEGER)")
	applied, err := Replay(l, 0, b)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	res, _ := b.Read(0, nil, "SELECT a FROM t ORDER BY a")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Fatalf("replayed rows: %v", res.Rows)
	}
}

func TestReplayFromCheckpoint(t *testing.T) {
	l := NewMemoryLog()
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (1)"})
	seq, _ := l.Checkpoint("cp")
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO t (a) VALUES (2)"})

	b := mkBackend(t, "cpb", "CREATE TABLE t (a INTEGER)")
	applied, err := Replay(l, seq, b)
	if err != nil || applied != 1 {
		t.Fatalf("applied = %d, %v", applied, err)
	}
	res, _ := b.Read(0, nil, "SELECT a FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestReplayErrorsSurfaceSQL(t *testing.T) {
	l := NewMemoryLog()
	l.Append(Entry{Class: ClassWrite, SQL: "INSERT INTO missing (a) VALUES (1)"})
	b := mkBackend(t, "eb", "CREATE TABLE t (a INTEGER)")
	_, err := Replay(l, 0, b)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("replay error: %v", err)
	}
}

func TestInsertSQLBatching(t *testing.T) {
	td := TableDump{
		Name:    "t",
		Columns: []ColumnDump{{Name: "a", Type: "INTEGER"}},
	}
	for i := 0; i < 250; i++ {
		td.Rows = append(td.Rows, []ValueDump{{K: "i", V: fmt.Sprint(i)}})
	}
	stmts := td.InsertSQL(100)
	if len(stmts) != 3 {
		t.Fatalf("batches = %d, want 3", len(stmts))
	}
	if !strings.HasPrefix(stmts[0], "INSERT INTO t (a) VALUES ") {
		t.Errorf("batch form: %s", stmts[0][:40])
	}
}

// TestSQLLogLegacySchemaStillAppends: a log table created before the
// tables_csv footprint column existed must keep working — CREATE TABLE IF
// NOT EXISTS cannot extend it, so the log detects the old schema at open
// and writes/reads the six legacy columns (footprints simply not persisted).
func TestSQLLogLegacySchemaStillAppends(t *testing.T) {
	db := engineExecutor{sqlengine.New("legacydb")}
	if _, err := db.ExecSQL(`CREATE TABLE rl (seq INTEGER PRIMARY KEY, usr VARCHAR, tx INTEGER, class VARCHAR, sql_text VARCHAR, name VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL(`INSERT INTO rl (seq, usr, tx, class, sql_text, name) VALUES (1, 'u', 0, 'write', 'INSERT INTO t (a) VALUES (1)', '')`); err != nil {
		t.Fatal(err)
	}
	l, err := NewSQLLog(db, "rl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{User: "u", Class: ClassWrite, SQL: "w2", Tables: []string{"t"}}); err != nil {
		t.Fatalf("append on legacy schema: %v", err)
	}
	got, err := l.Since(0)
	if err != nil || len(got) != 2 {
		t.Fatalf("since on legacy schema: %v, %d entries", err, len(got))
	}
	if got[1].SQL != "w2" || got[1].Seq != 2 {
		t.Fatalf("appended entry: %+v", got[1])
	}
}

// TestSQLLogFootprintRoundTrip: table footprints and the gate-exclusive
// marker survive the SQL encoding.
func TestSQLLogFootprintRoundTrip(t *testing.T) {
	l, err := NewSQLLog(engineExecutor{sqlengine.New("fpdb")}, "rl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Class: ClassWrite, SQL: "w", Tables: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Class: ClassWrite, SQL: "ddl", Global: true}); err != nil {
		t.Fatal(err)
	}
	got, err := l.Since(0)
	if err != nil || len(got) != 2 {
		t.Fatalf("since: %v, %d", err, len(got))
	}
	if len(got[0].Tables) != 2 || got[0].Tables[0] != "a" || got[0].Tables[1] != "b" || got[0].Global {
		t.Fatalf("footprint entry: %+v", got[0])
	}
	if !got[1].Global || len(got[1].Tables) != 0 {
		t.Fatalf("global entry: %+v", got[1])
	}
	if !got[0].ConflictsWith(&got[1]) {
		t.Fatal("global entry must conflict with everything")
	}
}

// TestEntryConflictsWithGlobalDemarcation: a commit of a transaction that
// was sequenced gate-exclusive (e.g. it performed DDL) conflicts with
// everything even though its table list is empty.
func TestEntryConflictsWithGlobalDemarcation(t *testing.T) {
	commit := Entry{TxID: 1, Class: ClassCommit, Global: true}
	w := Entry{TxID: 2, Class: ClassWrite, Tables: []string{"x"}, V: FootprintVersion}
	if !commit.ConflictsWith(&w) {
		t.Fatal("global commit must conflict with a write")
	}
	empty := Entry{TxID: 3, Class: ClassCommit, V: FootprintVersion}
	if empty.ConflictsWith(&w) {
		t.Fatal("a footprint-aware commit that touched nothing conflicts with nothing")
	}
	// A demarcation from before footprints existed has an UNKNOWN
	// footprint, not an empty one: it must be treated conservatively.
	legacy := Entry{TxID: 4, Class: ClassCommit}
	if !legacy.ConflictsWith(&w) {
		t.Fatal("a legacy commit's footprint is unknown: must conflict with everything")
	}
}

// TestShardedLogConcurrentAppends drives appends from many goroutines across
// distinct conflict-class stripes while readers call Since concurrently, then
// asserts the final harvest is the complete, hole-free sequence in Seq order
// — the property the striped append path must preserve (run with -race).
func TestShardedLogConcurrentAppends(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Log
	}{
		{"MemoryLog", func() Log { return NewMemoryLog() }},
		{"SQLLog", func() Log {
			l, err := NewSQLLog(engineExecutor{sqlengine.New("shardlog")}, "recovery_log")
			if err != nil {
				t.Fatal(err)
			}
			return l
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			defer l.Close()
			const writers = 8
			const perWriter = 50
			var wg, rwg sync.WaitGroup
			stop := make(chan struct{})
			// Concurrent readers: every Since(0) must be a Seq-ordered,
			// hole-free prefix even while appends race on other stripes.
			for r := 0; r < 2; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						got, err := l.Since(0)
						if err != nil {
							t.Errorf("Since: %v", err)
							return
						}
						for i, e := range got {
							if e.Seq != uint64(i+1) {
								t.Errorf("hole or misorder: entry %d has seq %d", i, e.Seq)
								return
							}
						}
					}
				}()
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						// Distinct footprints land on distinct stripes.
						e := Entry{
							Class:  ClassWrite,
							SQL:    fmt.Sprintf("w%d-%d", w, i),
							Tables: []string{fmt.Sprintf("t%d", w)},
							V:      FootprintVersion,
						}
						if _, err := l.Append(e); err != nil {
							t.Errorf("append: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			rwg.Wait()
			got, err := l.Since(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != writers*perWriter {
				t.Fatalf("Since(0) = %d entries, want %d", len(got), writers*perWriter)
			}
			for i, e := range got {
				if e.Seq != uint64(i+1) {
					t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, i+1)
				}
			}
		})
	}
}

// TestSQLLogRestoredSinceDoesNotHang: reopening a SQLLog over an existing
// table restores the sequence counter; Since must treat the restored prefix
// as already stored rather than waiting for appends that predate the reopen.
func TestSQLLogRestoredSinceDoesNotHang(t *testing.T) {
	db := engineExecutor{sqlengine.New("reopenlog")}
	l1, err := NewSQLLog(db, "recovery_log")
	if err != nil {
		t.Fatal(err)
	}
	l1.Append(Entry{Class: ClassWrite, SQL: "w1"})
	l1.Append(Entry{Class: ClassWrite, SQL: "w2"})
	l1.Close()

	l2, err := NewSQLLog(db, "recovery_log")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	done := make(chan struct{})
	var got []Entry
	go func() {
		defer close(done)
		got, err = l2.Since(0)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Since hung on a restored log (stored counter not restored)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].SQL != "w1" || got[1].SQL != "w2" {
		t.Fatalf("restored Since(0) = %+v", got)
	}
	if s, _ := l2.Append(Entry{Class: ClassWrite, SQL: "w3"}); s != 3 {
		t.Fatalf("append after restore got seq %d, want 3", s)
	}
}
