package recovery

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cjdbc/internal/backend"
	"cjdbc/internal/conflictsched"
)

// Replay applies the committed writes recorded after seq to a backend, in
// log order. Entries belonging to transactions that aborted (or never
// finished) are skipped. It is the sequential (workers = 1) form of
// ReplayParallel, kept as the conservative default for callers that do not
// configure a worker count.
func Replay(l Log, seq uint64, b *backend.Backend) (applied int, err error) {
	return ReplayParallel(l, seq, b, 1)
}

// Pass carries replay bookkeeping across the multiple passes of one
// re-integration: a long bulk pass outside the cluster write quiesce
// followed by short catch-up passes inside it. A transaction is applied
// all-or-nothing in the pass that first observes its commit, so a
// transaction spanning passes — its writes visible to the bulk pass, its
// commit logged only later — is still applied completely: the later pass
// re-reads the window from the original checkpoint and picks the whole
// transaction up. nil means nothing has been replayed yet.
type Pass struct {
	// Last is the highest log sequence number any pass has observed.
	// Auto-commit entries at or below it have been applied.
	Last uint64
	// TxDone records the committed transactions whose writes have been
	// applied by earlier passes.
	TxDone map[uint64]bool
}

// ReplayPass applies to b the committed writes recorded after seq that prev
// has not already applied: transactions in prev.TxDone and auto-commit
// entries at or below prev.Last are skipped. It returns the accumulated
// bookkeeping for the next pass and the transactions that remain unresolved
// — write entries in the window with no commit or rollback logged yet. A
// caller re-integrating a backend must not enable it while an unresolved
// transaction is still active cluster-wide: once that transaction commits,
// the backend would no-op the demarcation and silently miss the writes.
// On error the backend must stay disabled (see ReplayParallel).
func ReplayPass(l Log, seq uint64, prev *Pass, b *backend.Backend, workers int) (next *Pass, unresolved []uint64, applied int, err error) {
	if prev == nil {
		prev = &Pass{}
	}
	applied, next, unresolved, err = replayPass(l, seq, prev, b, workers)
	return next, unresolved, applied, err
}

// ReplayParallel applies the committed writes recorded after seq to a
// backend on up to workers concurrent appliers. The paper replays the write
// log sequentially when a backend re-integrates (§3.2) and flags the
// resulting re-integration time as the cost of cluster elasticity; the
// conflict footprint every entry carries (recorded under the sequencer's
// class locks, see Entry) lets disjoint conflict classes replay
// concurrently instead. Each entry waits only on the completion of the
// newest earlier conflicting entry — the same per-table dependency rule the
// backend's write lanes use — so Seq order restricted to any conflict class
// is preserved, which is exactly the order every backend originally applied
// those entries in. Entries of the same transaction are chained through a
// synthetic per-transaction key; globally sequenced entries (DDL, unknown
// footprints) and entries predating footprints (V = 0, or read from a
// legacy log table) are barriers that serialize against everything.
//
// workers <= 0 defaults to GOMAXPROCS; workers == 1 replays sequentially in
// Seq order (the legacy behavior). On error the first failing entry (by
// Seq) is reported, every in-flight applier is drained before returning,
// and no entry that conflicts with the failed one has been applied out of
// order; entries of classes disjoint from the failure may or may not have
// applied, which is why the caller must keep the backend disabled on error.
func ReplayParallel(l Log, seq uint64, b *backend.Backend, workers int) (applied int, err error) {
	applied, _, _, err = replayPass(l, seq, &Pass{}, b, workers)
	return applied, err
}

func replayPass(l Log, seq uint64, prev *Pass, b *backend.Backend, workers int) (applied int, next *Pass, unresolved []uint64, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries, err := l.Since(seq)
	if err != nil {
		return 0, nil, nil, err
	}
	// A transaction's writes replay only when the log records its COMMIT
	// (§3.2: aborted or unfinished transactions are skipped).
	outcome := make(map[uint64]EntryClass)
	for _, e := range entries {
		if e.Class == ClassCommit || e.Class == ClassRollback {
			if _, seen := outcome[e.TxID]; !seen {
				outcome[e.TxID] = e.Class
			}
		}
	}
	replayable := func(e *Entry) bool {
		if e.Class != ClassWrite {
			return false
		}
		if e.TxID == 0 {
			// Auto-commit writes replay in the first pass that sees them.
			return e.Seq > prev.Last
		}
		return outcome[e.TxID] == ClassCommit && !prev.TxDone[e.TxID]
	}

	// Bookkeeping for the next pass: the frontier and the transactions this
	// pass settles, plus whatever earlier passes settled. Writes without a
	// demarcation yet stay unresolved; their transactions replay whole in a
	// later pass (or never, if they roll back or are abandoned).
	last := prev.Last
	seenUnresolved := make(map[uint64]bool)
	for i := range entries {
		e := &entries[i]
		if e.Seq > last {
			last = e.Seq
		}
		if e.Class == ClassWrite && e.TxID != 0 {
			if _, ended := outcome[e.TxID]; !ended && !seenUnresolved[e.TxID] {
				seenUnresolved[e.TxID] = true
				unresolved = append(unresolved, e.TxID)
			}
		}
	}
	buildNext := func() *Pass {
		done := make(map[uint64]bool, len(prev.TxDone)+len(outcome))
		for tx := range prev.TxDone {
			done[tx] = true
		}
		for tx, oc := range outcome {
			if oc == ClassCommit {
				done[tx] = true
			}
		}
		return &Pass{Last: last, TxDone: done}
	}

	if workers == 1 {
		for i := range entries {
			e := &entries[i]
			if !replayable(e) {
				continue
			}
			if _, err := b.DirectExec(nil, e.SQL); err != nil {
				return applied, nil, unresolved, replayErr(e, err)
			}
			applied++
		}
		return applied, buildNext(), unresolved, nil
	}

	var (
		pool    = conflictsched.NewPool(workers)
		done    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		failSeq uint64
		failErr error
	)
	recordFailure := func(e *Entry, execErr error) {
		failed.Store(true)
		errMu.Lock()
		// Appliers race; keep the lowest-Seq failure so the reported entry
		// is deterministic for a given log and failure set.
		if failErr == nil || e.Seq < failSeq {
			failSeq, failErr = e.Seq, replayErr(e, execErr)
		}
		errMu.Unlock()
	}

	// The scheduling loop submits entries in Seq order, so per-class
	// dependency chains follow Seq order; the pool's workers pull whichever
	// entry becomes ready first (ready-task handoff — no goroutine per
	// entry), and an applier only waits on strictly earlier entries, so the
	// dependency graph is acyclic and replay cannot deadlock.
	for i := range entries {
		e := &entries[i]
		if !replayable(e) {
			continue
		}
		if failed.Load() {
			break
		}
		keys, barrier := replayKeys(e)
		pool.Submit(keys, barrier, func() {
			if failed.Load() {
				return
			}
			if _, execErr := b.DirectExec(nil, e.SQL); execErr != nil {
				recordFailure(e, execErr)
				return
			}
			done.Add(1)
		})
	}
	pool.Stop()
	errMu.Lock()
	err = failErr
	errMu.Unlock()
	if err != nil {
		return int(done.Load()), nil, unresolved, err
	}
	return int(done.Load()), buildNext(), unresolved, nil
}

// replayKeys converts an entry's conflict footprint into tracker keys:
// its table set plus a synthetic per-transaction key (entries of one
// transaction conflict with each other regardless of tables, matching
// Entry.ConflictsWith). The entry is a barrier when it was sequenced
// gate-exclusive or its footprint is unknown — no tables recorded, or a
// pre-footprint entry (V = 0: written before footprints existed, or read
// back from a storage that cannot persist them).
func replayKeys(e *Entry) (keys []string, barrier bool) {
	if e.Global || e.V < FootprintVersion || len(e.Tables) == 0 {
		return nil, true
	}
	return conflictsched.KeysWithTx(e.Tables, e.TxID), false
}

func replayErr(e *Entry, err error) error {
	return fmt.Errorf("recovery: replay seq %d (%s): %w", e.Seq, e.SQL, err)
}
