package recovery

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cjdbc/internal/backend"
	"cjdbc/internal/conflictsched"
)

// HostFilter restricts replay to a backend's hosted tables under RAIDb-2
// partial replication: it reports whether the backend hosts a table.
// Entries whose recorded footprint contains a table the filter rejects are
// skipped — they were never dispatched to the backend live, so its replay
// stream is exactly the hosted subsequence of the log. Entries with no
// recorded tables (legacy V=0, or statements with genuinely unknown
// footprints) replay everywhere. nil means full replication.
type HostFilter func(table string) bool

// entryHosted reports whether a log entry belongs on a backend under the
// placement filter. The rule mirrors dispatch: a statement is sent to the
// backends hosting every table it references, so an entry replays only
// where its whole footprint is hosted.
func entryHosted(e *Entry, hosted HostFilter) bool {
	if hosted == nil || len(e.Tables) == 0 {
		return true
	}
	for _, t := range e.Tables {
		if !hosted(t) {
			return false
		}
	}
	return true
}

// Replay applies the committed writes recorded after seq to a backend, in
// log order. Entries belonging to transactions that aborted (or never
// finished) are skipped. It is the sequential (workers = 1) form of
// ReplayParallel, kept as the conservative default for callers that do not
// configure a worker count.
func Replay(l Log, seq uint64, b *backend.Backend) (applied int, err error) {
	return ReplayParallel(l, seq, b, 1)
}

// Pass carries replay bookkeeping across the multiple passes of one
// re-integration: a long bulk pass outside the cluster write quiesce
// followed by short catch-up passes inside it. A transaction is applied
// all-or-nothing in the pass that first observes its commit, so a
// transaction spanning passes — its writes visible to the bulk pass, its
// commit logged only later — is still applied completely: the later pass
// re-reads the window from the original checkpoint and picks the whole
// transaction up. nil means nothing has been replayed yet.
type Pass struct {
	// Last is the frontier: auto-commit entries at or below it have been
	// applied (or held back in AutoDone's complement — see AutoDone). A
	// held-back entry caps Last just below itself, so the next pass
	// revisits it.
	Last uint64
	// TxDone records the committed transactions whose writes have been
	// applied by earlier passes.
	TxDone map[uint64]bool
	// AutoDone records auto-commit entries applied above Last: when a
	// held-back entry caps Last, later disjoint auto-commit entries that
	// did apply are tracked individually so the next pass neither skips
	// nor re-applies them.
	AutoDone map[uint64]bool
	// TxDead marks transactions the caller has proven can never demarcate
	// (unresolved in the log but inactive cluster-wide under the write
	// quiesce): they replay as rolled back and stop holding back their
	// conflict classes.
	TxDead map[uint64]bool
	// Deferred counts the replayable units (whole transactions or
	// auto-commit entries) the pass held back because an earlier
	// conflicting entry could not be applied yet. The caller must run
	// another pass before enabling the backend while it is non-zero.
	Deferred int
}

// ReplayPass applies to b the committed writes recorded after seq that prev
// has not already applied: transactions in prev.TxDone and auto-commit
// entries covered by prev.Last/prev.AutoDone are skipped. It returns the
// accumulated bookkeeping for the next pass and the transactions that
// remain unresolved — write entries in the window with no commit or
// rollback logged yet. A caller re-integrating a backend must not enable it
// while an unresolved transaction is still active cluster-wide, nor while
// next.Deferred is non-zero: entries held back behind an unresolved
// transaction apply only in a later pass. On error the backend must stay
// disabled (see ReplayParallel).
func ReplayPass(l Log, seq uint64, prev *Pass, b *backend.Backend, workers int) (next *Pass, unresolved []uint64, applied int, err error) {
	return ReplayPassHosted(l, seq, prev, b, workers, nil)
}

// ReplayPassHosted is ReplayPass restricted to a backend's hosted tables
// (RAIDb-2 partial replication): entries whose footprint the filter rejects
// are invisible — not applied, not counted unresolved, and without a stake
// in the pass's ordering decisions — exactly as they were never dispatched
// to the backend live.
func ReplayPassHosted(l Log, seq uint64, prev *Pass, b *backend.Backend, workers int, hosted HostFilter) (next *Pass, unresolved []uint64, applied int, err error) {
	if prev == nil {
		prev = &Pass{}
	}
	applied, next, unresolved, err = replayPass(l, seq, prev, b, workers, hosted)
	return next, unresolved, applied, err
}

// ReplayParallel applies the committed writes recorded after seq to a
// backend on up to workers concurrent appliers. The paper replays the write
// log sequentially when a backend re-integrates (§3.2) and flags the
// resulting re-integration time as the cost of cluster elasticity; the
// conflict footprint every entry carries (recorded under the sequencer's
// class locks, see Entry) lets disjoint conflict classes replay
// concurrently instead. Each entry waits only on the completion of the
// newest earlier conflicting entry — the same per-table dependency rule the
// backend's write lanes use — so Seq order restricted to any conflict class
// is preserved, which is exactly the order every backend originally applied
// those entries in. Entries of the same transaction are chained through a
// synthetic per-transaction key; globally sequenced entries (DDL, unknown
// footprints) and entries predating footprints (V = 0, or read from a
// legacy log table) are barriers that serialize against everything.
//
// workers <= 0 defaults to GOMAXPROCS; workers == 1 replays sequentially in
// Seq order (the legacy behavior). On error the first failing entry (by
// Seq) is reported, every in-flight applier is drained before returning,
// and no entry that conflicts with the failed one has been applied out of
// order; entries of classes disjoint from the failure may or may not have
// applied, which is why the caller must keep the backend disabled on error.
func ReplayParallel(l Log, seq uint64, b *backend.Backend, workers int) (applied int, err error) {
	applied, _, _, err = replayPass(l, seq, &Pass{}, b, workers, nil)
	return applied, err
}

// decideDeferrals computes a pass's holdback set. A write of a transaction
// that is still unresolved (no demarcation in the log, not marked dead)
// cannot be applied this pass, yet later entries of the same conflict class
// may already be replayable — applying those now would invert the per-class
// Seq order once the transaction commits and a later pass applies its
// writes. So every replayable unit whose keys reach a held-back entry is
// deferred too: auto-commit entries individually, transactions as whole
// groups (a transaction applies all-or-nothing, so one conflicting write
// defers its writes on every table — the per-tx key chains them even when
// their tables are disjoint). Deferred units poison their own keys in turn.
// Decisions iterate to a fixpoint because a group deferral discovered at
// its later entry retroactively holds back the group's earlier entries and
// anything conflicting after them; the deferral set only grows, so the loop
// terminates.
func decideDeferrals(entries []Entry, hostedAt []bool, outcome map[uint64]EntryClass, prev *Pass) (deferTx, deferAuto map[uint64]bool) {
	deferTx = make(map[uint64]bool)
	deferAuto = make(map[uint64]bool)
	for {
		changed := false
		held := make(map[string]bool)
		heldBarrier := false
		poison := func(keys []string, barrier bool) {
			if barrier {
				heldBarrier = true
			}
			for _, k := range keys {
				held[k] = true
			}
		}
		conflicts := func(keys []string, barrier bool) bool {
			if heldBarrier {
				return true
			}
			if barrier {
				return len(held) > 0
			}
			for _, k := range keys {
				if held[k] {
					return true
				}
			}
			return false
		}
		for i := range entries {
			e := &entries[i]
			if e.Class != ClassWrite || !hostedAt[i] {
				continue
			}
			keys, barrier := replayKeys(e)
			if e.TxID != 0 {
				oc, ended := outcome[e.TxID]
				switch {
				case !ended && prev.TxDead[e.TxID]:
					continue // abandoned: replays as rolled back, holds nothing
				case !ended:
					poison(keys, barrier) // unresolved: not applicable this pass
					continue
				case oc == ClassRollback, prev.TxDone[e.TxID]:
					continue // never applies / already applied: no ordering stake
				}
				if deferTx[e.TxID] {
					poison(keys, barrier)
					continue
				}
				if conflicts(keys, barrier) {
					deferTx[e.TxID] = true
					changed = true
					poison(keys, barrier)
				}
				continue
			}
			if e.Seq <= prev.Last || prev.AutoDone[e.Seq] {
				continue
			}
			if deferAuto[e.Seq] {
				poison(keys, barrier)
				continue
			}
			if conflicts(keys, barrier) {
				deferAuto[e.Seq] = true
				changed = true
				poison(keys, barrier)
			}
		}
		if !changed {
			return deferTx, deferAuto
		}
	}
}

func replayPass(l Log, seq uint64, prev *Pass, b *backend.Backend, workers int, hosted HostFilter) (applied int, next *Pass, unresolved []uint64, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries, err := l.Since(seq)
	if err != nil {
		return 0, nil, nil, err
	}
	// A transaction's writes replay only when the log records its COMMIT
	// (§3.2: aborted or unfinished transactions are skipped).
	outcome := make(map[uint64]EntryClass)
	for _, e := range entries {
		if e.Class == ClassCommit || e.Class == ClassRollback {
			if _, seen := outcome[e.TxID]; !seen {
				outcome[e.TxID] = e.Class
			}
		}
	}
	// Hosted view: under partial replication the backend's replay stream is
	// the subsequence of entries whose footprint it hosts.
	hostedAt := make([]bool, len(entries))
	for i := range entries {
		hostedAt[i] = entryHosted(&entries[i], hosted)
	}

	// Bookkeeping for the next pass: the frontier and the transactions this
	// pass settles, plus whatever earlier passes settled. Hosted writes
	// without a demarcation yet stay unresolved (unless the caller marked
	// them dead); their transactions replay whole in a later pass, or never.
	last := prev.Last
	seenUnresolved := make(map[uint64]bool)
	for i := range entries {
		e := &entries[i]
		if e.Seq > last {
			last = e.Seq
		}
		if e.Class == ClassWrite && e.TxID != 0 && hostedAt[i] {
			if _, ended := outcome[e.TxID]; !ended && !prev.TxDead[e.TxID] && !seenUnresolved[e.TxID] {
				seenUnresolved[e.TxID] = true
				unresolved = append(unresolved, e.TxID)
			}
		}
	}

	deferTx, deferAuto := decideDeferrals(entries, hostedAt, outcome, prev)
	// A held-back auto-commit entry caps the frontier just below itself so
	// the next pass revisits it; autos applied above the cap go to AutoDone.
	for s := range deferAuto {
		if s <= last {
			last = s - 1
		}
	}

	replayable := func(i int, e *Entry) bool {
		if e.Class != ClassWrite || !hostedAt[i] {
			return false
		}
		if e.TxID == 0 {
			return e.Seq > prev.Last && !prev.AutoDone[e.Seq] && !deferAuto[e.Seq]
		}
		return outcome[e.TxID] == ClassCommit && !prev.TxDone[e.TxID] && !deferTx[e.TxID]
	}

	var autoApplied []uint64
	buildNext := func() *Pass {
		done := make(map[uint64]bool, len(prev.TxDone)+len(outcome))
		for tx := range prev.TxDone {
			done[tx] = true
		}
		for tx, oc := range outcome {
			if oc == ClassCommit && !deferTx[tx] {
				done[tx] = true
			}
		}
		autoDone := make(map[uint64]bool)
		for s := range prev.AutoDone {
			if s > last {
				autoDone[s] = true
			}
		}
		for _, s := range autoApplied {
			if s > last {
				autoDone[s] = true
			}
		}
		var dead map[uint64]bool
		if len(prev.TxDead) > 0 {
			dead = make(map[uint64]bool, len(prev.TxDead))
			for tx := range prev.TxDead {
				dead[tx] = true
			}
		}
		return &Pass{Last: last, TxDone: done, AutoDone: autoDone, TxDead: dead,
			Deferred: len(deferTx) + len(deferAuto)}
	}

	if workers == 1 {
		for i := range entries {
			e := &entries[i]
			if !replayable(i, e) {
				continue
			}
			if _, err := b.DirectExec(nil, e.SQL); err != nil {
				return applied, nil, unresolved, replayErr(e, err)
			}
			if e.TxID == 0 {
				autoApplied = append(autoApplied, e.Seq)
			}
			applied++
		}
		return applied, buildNext(), unresolved, nil
	}

	var (
		pool    = conflictsched.NewPool(workers)
		done    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		failSeq uint64
		failErr error
	)
	recordFailure := func(e *Entry, execErr error) {
		failed.Store(true)
		errMu.Lock()
		// Appliers race; keep the lowest-Seq failure so the reported entry
		// is deterministic for a given log and failure set.
		if failErr == nil || e.Seq < failSeq {
			failSeq, failErr = e.Seq, replayErr(e, execErr)
		}
		errMu.Unlock()
	}

	// The scheduling loop submits entries in Seq order, so per-class
	// dependency chains follow Seq order; the pool's workers pull whichever
	// entry becomes ready first (ready-task handoff — no goroutine per
	// entry), and an applier only waits on strictly earlier entries, so the
	// dependency graph is acyclic and replay cannot deadlock.
	for i := range entries {
		e := &entries[i]
		if !replayable(i, e) {
			continue
		}
		if failed.Load() {
			break
		}
		if e.TxID == 0 {
			autoApplied = append(autoApplied, e.Seq)
		}
		keys, barrier := replayKeys(e)
		pool.Submit(keys, barrier, func() {
			if failed.Load() {
				return
			}
			if _, execErr := b.DirectExec(nil, e.SQL); execErr != nil {
				recordFailure(e, execErr)
				return
			}
			done.Add(1)
		})
	}
	pool.Stop()
	errMu.Lock()
	err = failErr
	errMu.Unlock()
	if err != nil {
		return int(done.Load()), nil, unresolved, err
	}
	return int(done.Load()), buildNext(), unresolved, nil
}

// replayKeys converts an entry's conflict footprint into tracker keys:
// its table set plus a synthetic per-transaction key (entries of one
// transaction conflict with each other regardless of tables, matching
// Entry.ConflictsWith). The entry is a barrier when it was sequenced
// gate-exclusive or its footprint is unknown — no tables recorded, or a
// pre-footprint entry (V = 0: written before footprints existed, or read
// back from a storage that cannot persist them).
func replayKeys(e *Entry) (keys []string, barrier bool) {
	if e.Global || e.V < FootprintVersion || len(e.Tables) == 0 {
		return nil, true
	}
	return conflictsched.KeysWithTx(e.Tables, e.TxID), false
}

func replayErr(e *Entry, err error) error {
	return fmt.Errorf("recovery: replay seq %d (%s): %w", e.Seq, e.SQL, err)
}
