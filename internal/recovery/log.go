// Package recovery implements the C-JDBC recovery log (§3.2) and the
// portable database dumps used for checkpointing (§3.1, where the paper
// uses the Octopus ETL tool). A log entry records the user, the transaction
// identifier and the SQL statement for every begin, commit, abort and
// update; checkpoints are named markers in the log. The log can live in
// memory, in a flat file, or in a database reached through SQL (which is
// how the fault-tolerant log of Figure 2 is built: the entries are sent to
// a replicated virtual database).
package recovery

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EntryClass classifies a log entry.
type EntryClass string

// Log entry classes.
const (
	ClassBegin      EntryClass = "begin"
	ClassCommit     EntryClass = "commit"
	ClassRollback   EntryClass = "rollback"
	ClassWrite      EntryClass = "write"
	ClassCheckpoint EntryClass = "checkpoint"
)

// Entry is one recovery log record. Seq is assigned by the log under the
// appender's conflict-class critical section, so for any two conflicting
// operations (their Tables footprints intersect, or either is global) the
// sequence order equals the order every backend applied them in; entries of
// disjoint classes may interleave freely — any interleaving is a valid
// serialization. Sequential replay in Seq order therefore reconstructs the
// same partial order.
type Entry struct {
	Seq   uint64     `json:"seq"`
	User  string     `json:"user"`
	TxID  uint64     `json:"tx"`
	Class EntryClass `json:"class"`
	SQL   string     `json:"sql,omitempty"`
	Name  string     `json:"name,omitempty"` // checkpoint marker name
	// Tables is the conflict footprint the operation was sequenced under:
	// a write's table set, or a demarcation's accumulated transaction
	// footprint. Empty with Global unset means "touched nothing" for
	// demarcations (and, for legacy write entries predating Global,
	// conflicts-with-everything).
	Tables []string `json:"tables,omitempty"`
	// Global marks an operation sequenced gate-exclusive (DDL, unknown
	// footprints, or a demarcation of a transaction that performed one):
	// it conflicts with everything regardless of Tables.
	Global bool `json:"global,omitempty"`
	// V is the footprint schema version: entries appended by the
	// conflict-class sequencer carry V=1, so an empty demarcation
	// footprint means "touched nothing". Entries with V=0 predate
	// footprints (or passed through a storage that cannot persist them,
	// like a legacy SQL log table) and their footprint is unknown.
	V uint8 `json:"v,omitempty"`
}

// FootprintVersion is the V stamped on entries whose footprint fields are
// authoritative (set by the conflict-class sequencer at append time).
const FootprintVersion = 1

// ConflictsWith reports whether two entries were sequenced in the same
// conflict class (their footprints intersect, either was sequenced
// globally, or they belong to the same transaction). For such pairs the
// Seq order is the order every backend applied them in. Entries whose
// footprint is unknown (V=0: written before footprints existed, or read
// back from a storage that cannot persist them) are conservatively treated
// as conflicting with everything.
func (e *Entry) ConflictsWith(o *Entry) bool {
	if e.TxID != 0 && e.TxID == o.TxID {
		return true
	}
	isGlobal := func(x *Entry) bool {
		if x.Global {
			return true
		}
		switch x.Class {
		case ClassWrite:
			return len(x.Tables) == 0
		case ClassCommit, ClassRollback:
			// Only a footprint-aware entry may claim "touched nothing".
			return x.V < FootprintVersion
		}
		return false
	}
	if isGlobal(e) || isGlobal(o) {
		return true
	}
	for _, a := range e.Tables {
		for _, b := range o.Tables {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Log is the recovery log interface. Implementations must be safe for
// concurrent use.
type Log interface {
	// Append stores an entry (its Seq field is assigned) and returns the
	// assigned sequence number.
	Append(e Entry) (uint64, error)
	// Checkpoint inserts a named checkpoint marker.
	Checkpoint(name string) (uint64, error)
	// CheckpointSeq returns the sequence number of a named checkpoint.
	CheckpointSeq(name string) (uint64, bool, error)
	// Since returns all entries with Seq greater than seq, in order.
	Since(seq uint64) ([]Entry, error)
	// Close releases resources.
	Close() error
}

// appendStripeCount is the number of per-conflict-class append stripes the
// memory and SQL logs shard their append path over.
const appendStripeCount = 16

// classStripe maps an entry's conflict footprint to an append stripe.
// Entries of one conflict class (same footprint) always land on the same
// stripe — their appends are already serialized by the sequencer's
// class critical section — while disjoint classes usually land on different
// stripes and stop serializing on one log mutex. The mapping needs no
// conflict-awareness for correctness: stripes only protect storage, and
// ordering comes from the Seq allocation itself.
func classStripe(e Entry) int {
	h := fnv.New32a()
	for _, t := range e.Tables {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return int(h.Sum32() % appendStripeCount)
}

// appendStripe is one shard of the memory log's entry storage, padded so
// stripes never share a cache line.
type appendStripe struct {
	mu      sync.Mutex
	entries []Entry
	_       [88]byte
}

// MemoryLog keeps the log in process memory. Seq allocation is a lock-free
// atomic counter and entries are stored under per-conflict-class stripe
// locks, so appends from disjoint classes do not serialize on one mutex.
type MemoryLog struct {
	// seq counts allocated sequence numbers; stored counts entries whose
	// store has completed. Readers spin until they match, which proves the
	// prefix [1, seq] has no in-flight holes.
	seq     atomic.Uint64
	stored  atomic.Uint64
	stripes [appendStripeCount]appendStripe

	mu    sync.Mutex // guards marks only
	marks map[string]uint64
}

// NewMemoryLog creates an empty in-memory log.
func NewMemoryLog() *MemoryLog {
	return &MemoryLog{marks: make(map[string]uint64)}
}

func (l *MemoryLog) store(e Entry) {
	st := &l.stripes[classStripe(e)]
	st.mu.Lock()
	st.entries = append(st.entries, e)
	st.mu.Unlock()
	l.stored.Add(1)
}

// Append implements Log.
func (l *MemoryLog) Append(e Entry) (uint64, error) {
	e.Seq = l.seq.Add(1)
	l.store(e)
	return e.Seq, nil
}

// Checkpoint implements Log.
func (l *MemoryLog) Checkpoint(name string) (uint64, error) {
	e := Entry{Seq: l.seq.Add(1), Class: ClassCheckpoint, Name: name}
	l.store(e)
	l.mu.Lock()
	l.marks[name] = e.Seq
	l.mu.Unlock()
	return e.Seq, nil
}

// CheckpointSeq implements Log.
func (l *MemoryLog) CheckpointSeq(name string) (uint64, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.marks[name]
	return s, ok, nil
}

// barrier snapshots the allocated-sequence high-water mark and waits until
// every allocation at or below it has finished storing, so a subsequent
// harvest of the stripes sees the complete prefix [1, target].
func (l *MemoryLog) barrier() uint64 {
	target := l.seq.Load()
	for l.stored.Load() < target {
		runtime.Gosched()
	}
	return target
}

// Since implements Log. Entries are harvested from every stripe and merged
// back into Seq order; the result is the complete, hole-free prefix
// (seq, target] as of the barrier.
func (l *MemoryLog) Since(seq uint64) ([]Entry, error) {
	target := l.barrier()
	var out []Entry
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.Lock()
		for _, e := range st.entries {
			if e.Seq > seq && e.Seq <= target {
				out = append(out, e)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Len returns the number of entries, for tests and monitoring.
func (l *MemoryLog) Len() int {
	return int(l.barrier())
}

// Close implements Log.
func (l *MemoryLog) Close() error { return nil }

// FileLog stores the log in a flat file, one JSON entry per line (§3.2:
// "the log can be stored in a flat file").
type FileLog struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	seq   uint64
	marks map[string]uint64
	path  string
}

// OpenFileLog opens (creating if needed) a file-backed log, scanning
// existing entries to restore the sequence counter and checkpoint markers.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recovery: open log: %w", err)
	}
	l := &FileLog{f: f, marks: make(map[string]uint64), path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("recovery: corrupt log line: %w", err)
		}
		if e.Seq > l.seq {
			l.seq = e.Seq
		}
		if e.Class == ClassCheckpoint {
			l.marks[e.Name] = e.Seq
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		return nil, err
	}
	l.w = bufio.NewWriter(f)
	return l, nil
}

func (l *FileLog) appendLocked(e Entry) (uint64, error) {
	l.seq++
	e.Seq = l.seq
	b, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return 0, err
	}
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	return e.Seq, nil
}

// Append implements Log.
func (l *FileLog) Append(e Entry) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(e)
}

// Checkpoint implements Log.
func (l *FileLog) Checkpoint(name string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err := l.appendLocked(Entry{Class: ClassCheckpoint, Name: name})
	if err != nil {
		return 0, err
	}
	l.marks[name] = seq
	return seq, nil
}

// CheckpointSeq implements Log.
func (l *FileLog) CheckpointSeq(name string) (uint64, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.marks[name]
	return s, ok, nil
}

// Since implements Log.
func (l *FileLog) Since(seq uint64) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	f, err := os.Open(l.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, err
		}
		if e.Seq > seq {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// SQLExecutor executes one auto-commit SQL statement; the database-backed
// log uses it to reach its storage, which may itself be a fault-tolerant
// virtual database (Figure 2).
type SQLExecutor interface {
	ExecSQL(sql string) (rowsAffected int64, err error)
	QuerySQL(sql string) (columns []string, rows [][]string, err error)
}

// SQLLog stores the log in a database via SQL, the "log stored in a
// database using JDBC" option of §3.2. Conflict footprints are stored in a
// tables_csv column ("*" marks a globally sequenced entry); a log table
// created before that column existed is detected at open time and used in
// legacy mode (no footprints persisted), since CREATE TABLE IF NOT EXISTS
// cannot extend an existing schema.
//
// Like MemoryLog, Seq allocation is an atomic counter and the INSERT runs
// under a per-conflict-class stripe lock, so appends from disjoint classes
// reach the backing database concurrently instead of serializing on one
// log mutex (the backing store — possibly itself a replicated virtual
// database — handles its own write concurrency).
type SQLLog struct {
	db      SQLExecutor
	seq     atomic.Uint64
	stored  atomic.Uint64
	stripes [appendStripeCount]struct {
		mu sync.Mutex
		_  [112]byte
	}
	name   string
	legacy bool // pre-footprint 6-column table
}

// NewSQLLog creates (if needed) the log table and returns a database-backed
// log. tableName must be a valid SQL identifier.
func NewSQLLog(db SQLExecutor, tableName string) (*SQLLog, error) {
	l := &SQLLog{db: db, name: tableName}
	_, err := db.ExecSQL(fmt.Sprintf(
		`CREATE TABLE IF NOT EXISTS %s (seq INTEGER PRIMARY KEY, usr VARCHAR, tx INTEGER, class VARCHAR, sql_text VARCHAR, name VARCHAR, tables_csv VARCHAR)`,
		tableName))
	if err != nil {
		return nil, fmt.Errorf("recovery: create log table: %w", err)
	}
	// Probe for the footprint column: an existing pre-footprint table kept
	// its old schema (IF NOT EXISTS is a no-op), so fall back to writing
	// and reading the six legacy columns. The star expansion's column list
	// reflects the actual schema even when the table is empty (selecting a
	// missing column over zero rows would not error — projection is lazy).
	if cols, _, err := db.QuerySQL(fmt.Sprintf("SELECT * FROM %s WHERE seq = 0", tableName)); err == nil {
		l.legacy = true
		for _, c := range cols {
			if strings.EqualFold(c, "tables_csv") {
				l.legacy = false
				break
			}
		}
	}
	// Restore the sequence counter.
	_, rows, err := db.QuerySQL(fmt.Sprintf("SELECT MAX(seq) FROM %s", tableName))
	if err != nil {
		return nil, err
	}
	if len(rows) == 1 && rows[0][0] != "NULL" {
		var seq uint64
		fmt.Sscanf(rows[0][0], "%d", &seq)
		l.seq.Store(seq)
		// Every restored sequence number is already in the backing table, so
		// the stored counter starts level with seq — otherwise the first
		// Since barrier would wait forever for appends that predate us.
		l.stored.Store(seq)
	}
	return l, nil
}

// encodeTables renders an entry's conflict footprint for tables_csv: "*"
// for gate-exclusive entries, "-" for a footprint-aware entry that touched
// nothing (distinguishing it from legacy rows with no footprint at all),
// else the comma-joined table list.
func encodeTables(e Entry) string {
	switch {
	case e.Global:
		return "*"
	case len(e.Tables) == 0 && e.V >= FootprintVersion:
		return "-"
	}
	return strings.Join(e.Tables, ",")
}

// insert allocates the entry's Seq and writes it to the backing store under
// its conflict class's stripe lock. The stored counter advances even on an
// insert error, so a concurrent Since barrier never waits on a failed
// append (the sequence hole is harmless: Since orders by seq).
func (l *SQLLog) insert(e Entry) (uint64, error) {
	e.Seq = l.seq.Add(1)
	defer l.stored.Add(1)
	st := &l.stripes[classStripe(e)]
	st.mu.Lock()
	defer st.mu.Unlock()
	var err error
	if l.legacy {
		_, err = l.db.ExecSQL(fmt.Sprintf(
			"INSERT INTO %s (seq, usr, tx, class, sql_text, name) VALUES (%d, '%s', %d, '%s', '%s', '%s')",
			l.name, e.Seq, escape(e.User), e.TxID, e.Class, escape(e.SQL), escape(e.Name)))
	} else {
		_, err = l.db.ExecSQL(fmt.Sprintf(
			"INSERT INTO %s (seq, usr, tx, class, sql_text, name, tables_csv) VALUES (%d, '%s', %d, '%s', '%s', '%s', '%s')",
			l.name, e.Seq, escape(e.User), e.TxID, e.Class, escape(e.SQL), escape(e.Name),
			escape(encodeTables(e))))
	}
	if err != nil {
		return 0, err
	}
	return e.Seq, nil
}

// Append implements Log.
func (l *SQLLog) Append(e Entry) (uint64, error) {
	return l.insert(e)
}

// Checkpoint implements Log.
func (l *SQLLog) Checkpoint(name string) (uint64, error) {
	return l.insert(Entry{Class: ClassCheckpoint, Name: name})
}

// CheckpointSeq implements Log.
func (l *SQLLog) CheckpointSeq(name string) (uint64, bool, error) {
	_, rows, err := l.db.QuerySQL(fmt.Sprintf(
		"SELECT MAX(seq) FROM %s WHERE class = 'checkpoint' AND name = '%s'", l.name, escape(name)))
	if err != nil {
		return 0, false, err
	}
	if len(rows) == 0 || rows[0][0] == "NULL" {
		return 0, false, nil
	}
	var seq uint64
	fmt.Sscanf(rows[0][0], "%d", &seq)
	return seq, true, nil
}

// Since implements Log. The barrier spin mirrors MemoryLog's: every
// allocated sequence number at or below the snapshot target has finished
// its INSERT before the query runs, so the result is a hole-free prefix in
// Seq order (modulo failed appends, whose holes were reported to their
// callers).
func (l *SQLLog) Since(seq uint64) ([]Entry, error) {
	target := l.seq.Load()
	for l.stored.Load() < target {
		runtime.Gosched()
	}
	cols := "seq, usr, tx, class, sql_text, name, tables_csv"
	if l.legacy {
		cols = "seq, usr, tx, class, sql_text, name"
	}
	_, rows, err := l.db.QuerySQL(fmt.Sprintf(
		"SELECT %s FROM %s WHERE seq > %d AND seq <= %d ORDER BY seq", cols, l.name, seq, target))
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(rows))
	for _, r := range rows {
		var e Entry
		fmt.Sscanf(r[0], "%d", &e.Seq)
		e.User = r[1]
		fmt.Sscanf(r[2], "%d", &e.TxID)
		e.Class = EntryClass(r[3])
		e.SQL = r[4]
		e.Name = r[5]
		if len(r) > 6 && r[6] != "" && r[6] != "NULL" {
			e.V = FootprintVersion
			switch r[6] {
			case "*":
				e.Global = true
			case "-":
				// footprint-aware, touched nothing
			default:
				e.Tables = strings.Split(r[6], ",")
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// Close implements Log.
func (l *SQLLog) Close() error { return nil }

func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
