package recovery

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"cjdbc/internal/backend"
	"cjdbc/internal/sqlval"
)

// Dump is a portable snapshot of a database: schema plus data, the
// equivalent of the Octopus ETL dumps the paper uses for checkpointing.
// Tables and indexes are re-created through SQL on restore, so dumps move
// between heterogeneous backends.
type Dump struct {
	Name   string      `json:"name"`
	Taken  time.Time   `json:"taken"`
	Tables []TableDump `json:"tables"`
}

// TableDump is one table's schema and rows.
type TableDump struct {
	Name    string        `json:"name"`
	Columns []ColumnDump  `json:"columns"`
	Rows    [][]ValueDump `json:"rows"`
}

// ColumnDump describes one column portably.
type ColumnDump struct {
	Name          string `json:"name"`
	Type          string `json:"type"`
	NotNull       bool   `json:"not_null,omitempty"`
	PrimaryKey    bool   `json:"primary_key,omitempty"`
	AutoIncrement bool   `json:"auto_increment,omitempty"`
}

// ValueDump is one portable value: a kind tag and a string payload.
type ValueDump struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

func dumpValue(v sqlval.Value) ValueDump {
	switch v.K {
	case sqlval.KindNull:
		return ValueDump{K: "n"}
	case sqlval.KindInt:
		return ValueDump{K: "i", V: v.AsString()}
	case sqlval.KindFloat:
		return ValueDump{K: "f", V: v.AsString()}
	case sqlval.KindBool:
		return ValueDump{K: "b", V: v.AsString()}
	case sqlval.KindTime:
		return ValueDump{K: "t", V: v.T.UTC().Format(time.RFC3339Nano)}
	case sqlval.KindBytes:
		return ValueDump{K: "x", V: string(v.B)}
	default:
		return ValueDump{K: "s", V: v.S}
	}
}

// Literal renders the dumped value as a SQL literal for restore statements.
func (v ValueDump) Literal() string {
	switch v.K {
	case "n":
		return "NULL"
	case "i", "f":
		return v.V
	case "b":
		return v.V
	case "t":
		t, err := time.Parse(time.RFC3339Nano, v.V)
		if err != nil {
			return "NULL"
		}
		return "'" + t.UTC().Format("2006-01-02 15:04:05") + "'"
	default:
		return "'" + strings.ReplaceAll(v.V, "'", "''") + "'"
	}
}

func typeNameOf(k sqlval.Kind) string {
	switch k {
	case sqlval.KindInt:
		return "INTEGER"
	case sqlval.KindFloat:
		return "FLOAT"
	case sqlval.KindBool:
		return "BOOLEAN"
	case sqlval.KindTime:
		return "TIMESTAMP"
	case sqlval.KindBytes:
		return "BLOB"
	default:
		return "VARCHAR"
	}
}

// TakeDump snapshots every table reachable through the backend's schema
// provider. The backend should be disabled first so no updates occur during
// the dump (§3.1).
func TakeDump(name string, src backend.SchemaProvider) (*Dump, error) {
	return TakeDumpHosted(name, src, nil)
}

// TakeDumpHosted snapshots the tables the filter accepts — used when a
// checkpoint is taken from a donor hosting more tables than the backend it
// will seed (RAIDb-2 partial replication). nil dumps everything.
func TakeDumpHosted(name string, src backend.SchemaProvider, hosted HostFilter) (*Dump, error) {
	tables, err := src.TableNames()
	if err != nil {
		return nil, fmt.Errorf("recovery: dump: %w", err)
	}
	if hosted != nil {
		kept := tables[:0]
		for _, t := range tables {
			if hosted(t) {
				kept = append(kept, t)
			}
		}
		tables = kept
	}
	d := &Dump{Name: name, Taken: time.Now()}
	for _, t := range tables {
		schema, rows, err := src.SnapshotTable(t)
		if err != nil {
			return nil, fmt.Errorf("recovery: dump table %s: %w", t, err)
		}
		td := TableDump{Name: schema.Name}
		for _, c := range schema.Columns {
			td.Columns = append(td.Columns, ColumnDump{
				Name:          c.Name,
				Type:          typeNameOf(c.Type),
				NotNull:       c.NotNull,
				PrimaryKey:    c.PrimaryKey,
				AutoIncrement: c.AutoIncrement,
			})
		}
		for _, r := range rows {
			vr := make([]ValueDump, len(r))
			for i, v := range r {
				vr[i] = dumpValue(v)
			}
			td.Rows = append(td.Rows, vr)
		}
		d.Tables = append(d.Tables, td)
	}
	return d, nil
}

// CreateTableSQL renders the DDL recreating one dumped table.
func (td *TableDump) CreateTableSQL() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(td.Name)
	b.WriteString(" (")
	for i, c := range td.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type)
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		} else if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.AutoIncrement {
			b.WriteString(" AUTO_INCREMENT")
		}
	}
	b.WriteString(")")
	return b.String()
}

// InsertSQL renders batched INSERT statements restoring the table's rows,
// batchSize rows per statement.
func (td *TableDump) InsertSQL(batchSize int) []string {
	if batchSize <= 0 {
		batchSize = 100
	}
	cols := make([]string, len(td.Columns))
	for i, c := range td.Columns {
		cols[i] = c.Name
	}
	head := "INSERT INTO " + td.Name + " (" + strings.Join(cols, ", ") + ") VALUES "
	var out []string
	for start := 0; start < len(td.Rows); start += batchSize {
		end := start + batchSize
		if end > len(td.Rows) {
			end = len(td.Rows)
		}
		var b strings.Builder
		b.WriteString(head)
		for i, row := range td.Rows[start:end] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, v := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.Literal())
			}
			b.WriteString(")")
		}
		out = append(out, b.String())
	}
	return out
}

// TableNames lists the tables the dump contains, in dump order. Controllers
// use it to check donor coverage before seeding a partially-replicated
// backend from another backend's checkpoint.
func (d *Dump) TableNames() []string {
	out := make([]string, len(d.Tables))
	for i := range d.Tables {
		out[i] = d.Tables[i].Name
	}
	return out
}

// Restore replays a dump onto a backend through plain SQL, dropping any
// conflicting tables first. The backend must accept DirectExec (it is
// normally disabled while restoring).
func Restore(d *Dump, b *backend.Backend) error {
	return RestoreHosted(d, b, nil)
}

// RestoreHosted restores only the dumped tables the filter accepts — the
// RAIDb-2 path where a checkpoint taken from a donor with a wider table set
// seeds a backend hosting a subset. nil restores everything.
func RestoreHosted(d *Dump, b *backend.Backend, hosted HostFilter) error {
	for _, td := range d.Tables {
		if hosted != nil && !hosted(td.Name) {
			continue
		}
		if _, err := b.DirectExec(nil, "DROP TABLE IF EXISTS "+td.Name); err != nil {
			return fmt.Errorf("recovery: restore drop %s: %w", td.Name, err)
		}
		if _, err := b.DirectExec(nil, td.CreateTableSQL()); err != nil {
			return fmt.Errorf("recovery: restore create %s: %w", td.Name, err)
		}
		for _, ins := range td.InsertSQL(200) {
			if _, err := b.DirectExec(nil, ins); err != nil {
				return fmt.Errorf("recovery: restore rows of %s: %w", td.Name, err)
			}
		}
	}
	return nil
}

// WriteTo serializes the dump as JSON.
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadDump parses a JSON dump.
func ReadDump(r io.Reader) (*Dump, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("recovery: parse dump: %w", err)
	}
	return &d, nil
}
