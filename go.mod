module cjdbc

go 1.21
